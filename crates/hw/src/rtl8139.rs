//! Register-level model of a RealTek RTL8139 Ethernet controller — the NIC
//! the paper's Fig. 7 experiment kills a driver for, every 1–15 seconds.
//!
//! The model covers what the driver and the recovery experiments exercise:
//! software reset, rx/tx enable, promiscuous mode, a DMA rx ring in driver
//! memory, four DMA tx slots, and an interrupt status/mask pair. It also
//! models the §7.2 pathology: a faulty driver scribbling on reserved
//! registers can *wedge* the card so that a software reset no longer works
//! and only an out-of-band [`crate::bus::Device::hard_reset`] (a "low-level
//! BIOS reset") revives it.

use std::any::Any;

use phoenix_simcore::time::SimDuration;

use crate::bus::{DevCtx, Device};

/// Register map (offsets into the device's register window).
pub mod regs {
    /// Device / vendor id; reads `0x8139`.
    pub const IDR: u16 = 0x00;
    /// Command register.
    pub const CR: u16 = 0x37;
    /// Receive configuration register.
    pub const RCR: u16 = 0x44;
    /// Rx ring DMA base address (device-side address in the IOMMU window).
    pub const RBSTART: u16 = 0x30;
    /// Interrupt mask register.
    pub const IMR: u16 = 0x3C;
    /// Interrupt status register (write bits to acknowledge).
    pub const ISR: u16 = 0x3E;
    /// Rx read pointer (driver-owned).
    pub const CAPR: u16 = 0x38;
    /// Rx write pointer (device-owned, read-only).
    pub const CBR: u16 = 0x3A;
    /// Tx start address descriptors 0..4 (stride 4).
    pub const TSAD0: u16 = 0x20;
    /// Tx status/descriptor 0..4 (stride 4): write `len` to launch.
    pub const TSD0: u16 = 0x10;
}

/// Command register bits.
pub mod cr {
    /// Software reset.
    pub const RST: u32 = 0x10;
    /// Receiver enable.
    pub const RE: u32 = 0x08;
    /// Transmitter enable.
    pub const TE: u32 = 0x04;
}

/// Receive configuration bits.
pub mod rcr {
    /// Accept all packets (promiscuous mode).
    pub const AAP: u32 = 0x01;
}

/// Interrupt status bits.
pub mod isr {
    /// Receive OK.
    pub const ROK: u32 = 0x01;
    /// Receive error / ring overflow.
    pub const RER: u32 = 0x02;
    /// Transmit OK.
    pub const TOK: u32 = 0x04;
    /// Transmit error (DMA fault).
    pub const TER: u32 = 0x08;
}

/// Size of the rx ring the device expects at `RBSTART`.
pub const RX_RING_LEN: usize = 64 * 1024;

/// Per-packet header the device writes ahead of each received frame:
/// status (2 bytes, bit 0 = OK) then length (2 bytes).
pub const RX_HEADER_LEN: usize = 4;

/// Tunable model parameters.
#[derive(Debug, Clone)]
pub struct Rtl8139Config {
    /// Line rate in bytes/second (100 Mb/s Ethernet ≈ 12.5 MB/s).
    pub line_rate: u64,
    /// Probability that a write to a reserved register wedges the card
    /// (models the "card confused by the faulty driver" tail of §7.2).
    pub wedge_prob: f64,
    /// Whether the card supports a *master reset* command that can clear a
    /// wedge (the paper's card did not; default `false`).
    pub has_master_reset: bool,
}

impl Default for Rtl8139Config {
    fn default() -> Self {
        Rtl8139Config {
            line_rate: 12_500_000,
            wedge_prob: 0.0,
            has_master_reset: false,
        }
    }
}

/// The RTL8139 device model.
#[derive(Debug)]
pub struct Rtl8139 {
    cfg: Rtl8139Config,
    // Programmed state.
    cmd: u32,
    rcr: u32,
    rbstart: u32,
    imr: u32,
    isr: u32,
    capr: u32,
    cbr: u32,
    tsad: [u32; 4],
    ready: bool,
    wedged: bool,
    // Statistics (observable by tests and the harness).
    rx_ok: u64,
    rx_dropped: u64,
    tx_ok: u64,
    tx_err: u64,
}

impl Rtl8139 {
    /// Creates a powered-on but unconfigured card.
    pub fn new(cfg: Rtl8139Config) -> Self {
        Rtl8139 {
            cfg,
            cmd: 0,
            rcr: 0,
            rbstart: 0,
            imr: 0,
            isr: 0,
            capr: 0,
            cbr: 0,
            tsad: [0; 4],
            ready: false,
            wedged: false,
            rx_ok: 0,
            rx_dropped: 0,
            tx_ok: 0,
            tx_err: 0,
        }
    }

    /// Whether the card is wedged (software reset no longer works).
    pub fn is_wedged(&self) -> bool {
        self.wedged
    }

    /// Forces the card into the wedged state (test hook).
    pub fn force_wedge(&mut self) {
        self.wedged = true;
        self.ready = false;
    }

    /// Frames received into the ring since power-on.
    pub fn rx_ok(&self) -> u64 {
        self.rx_ok
    }

    /// Frames dropped (rx disabled, ring overflow, card wedged/crashing
    /// driver window).
    pub fn rx_dropped(&self) -> u64 {
        self.rx_dropped
    }

    /// Frames transmitted.
    pub fn tx_ok(&self) -> u64 {
        self.tx_ok
    }

    /// Transmit attempts that faulted on DMA.
    pub fn tx_err(&self) -> u64 {
        self.tx_err
    }

    fn soft_reset(&mut self) {
        self.cmd = 0;
        self.rcr = 0;
        self.rbstart = 0;
        self.imr = 0;
        self.isr = 0;
        self.capr = 0;
        self.cbr = 0;
        self.tsad = [0; 4];
        self.ready = true;
    }

    fn rx_enabled(&self) -> bool {
        self.ready && !self.wedged && (self.cmd & cr::RE) != 0
    }

    fn irq_if_unmasked(&mut self, ctx: &mut DevCtx<'_, '_>, bits: u32) {
        self.isr |= bits;
        if self.isr & self.imr != 0 {
            ctx.raise_irq();
        }
    }

    fn ring_space(&self) -> usize {
        // Free bytes between the device write pointer and the driver read
        // pointer, modulo the ring.
        let used = (self.cbr.wrapping_sub(self.capr)) as usize % RX_RING_LEN;
        RX_RING_LEN - used - 1
    }
}

impl Device for Rtl8139 {
    fn name(&self) -> &str {
        "rtl8139"
    }

    fn read(&mut self, _ctx: &mut DevCtx<'_, '_>, reg: u16) -> u32 {
        match reg {
            regs::IDR => 0x8139,
            regs::CR => {
                let mut v = self.cmd;
                if self.wedged || !self.ready {
                    // Reset bit reads as stuck while the card is not ready.
                    v |= cr::RST;
                }
                v
            }
            regs::RCR => self.rcr,
            regs::RBSTART => self.rbstart,
            regs::IMR => self.imr,
            regs::ISR => self.isr,
            regs::CAPR => self.capr,
            regs::CBR => self.cbr,
            r if (regs::TSD0..regs::TSD0 + 16).contains(&r)
                && (r - regs::TSD0).is_multiple_of(4) =>
            {
                // Transmit slots always report "own" (free) in this model.
                0x2000
            }
            r if (regs::TSAD0..regs::TSAD0 + 16).contains(&r)
                && (r - regs::TSAD0).is_multiple_of(4) =>
            {
                self.tsad[usize::from((r - regs::TSAD0) / 4)]
            }
            _ => 0,
        }
    }

    fn write(&mut self, ctx: &mut DevCtx<'_, '_>, reg: u16, value: u32) {
        match reg {
            regs::CR => {
                if value & cr::RST != 0 {
                    if self.wedged {
                        // §7.2: a wedged card ignores software resets.
                        return;
                    }
                    self.soft_reset();
                } else {
                    self.cmd = value & (cr::RE | cr::TE);
                }
            }
            regs::RCR => self.rcr = value,
            regs::RBSTART => self.rbstart = value,
            regs::IMR => self.imr = value,
            regs::ISR => self.isr &= !value, // write-1-to-clear
            regs::CAPR => self.capr = value % RX_RING_LEN as u32,
            r if (regs::TSAD0..regs::TSAD0 + 16).contains(&r)
                && (r - regs::TSAD0).is_multiple_of(4) =>
            {
                self.tsad[usize::from((r - regs::TSAD0) / 4)] = value;
            }
            r if (regs::TSD0..regs::TSD0 + 16).contains(&r)
                && (r - regs::TSD0).is_multiple_of(4) =>
            {
                // Launch transmission of `value & 0x1FFF` bytes from TSADn.
                if !self.ready || self.wedged || (self.cmd & cr::TE) == 0 {
                    self.tx_err += 1;
                    self.irq_if_unmasked(ctx, isr::TER);
                    return;
                }
                let slot = usize::from((r - regs::TSD0) / 4);
                let len = (value & 0x1FFF) as usize;
                let mut frame = vec![0u8; len];
                match ctx.dma_read(u64::from(self.tsad[slot]), &mut frame) {
                    Ok(()) => {
                        self.tx_ok += 1;
                        let delay = SimDuration::for_transfer(len as u64, self.cfg.line_rate);
                        // Serialize onto the wire, then report TOK.
                        ctx.tx_frame(frame);
                        ctx.set_timer_after(delay, u64::from(slot as u32));
                    }
                    Err(_) => {
                        // DMA fault: the driver programmed a bad address or
                        // died; the IOMMU contained the damage.
                        self.tx_err += 1;
                        self.irq_if_unmasked(ctx, isr::TER);
                    }
                }
            }
            _ => {
                // Reserved register: a buggy driver poking here may wedge
                // the card.
                if self.cfg.wedge_prob > 0.0 {
                    let p = self.cfg.wedge_prob;
                    if ctx.rng().chance(p) {
                        self.wedged = true;
                        self.ready = false;
                    }
                }
            }
        }
    }

    fn timer(&mut self, ctx: &mut DevCtx<'_, '_>, _token: u64) {
        // Tx serialization finished.
        self.irq_if_unmasked(ctx, isr::TOK);
    }

    fn frame_in(&mut self, ctx: &mut DevCtx<'_, '_>, frame: &[u8]) {
        if !self.rx_enabled() {
            self.rx_dropped += 1;
            return;
        }
        // Non-promiscuous filtering would check the MAC here; the paper's
        // recovery procedure re-enables promiscuous mode after restart, so
        // we model AAP as "receive everything" and !AAP as "receive
        // nothing addressed elsewhere" — INET always runs promiscuous.
        if self.rcr & rcr::AAP == 0 {
            self.rx_dropped += 1;
            return;
        }
        let need = RX_HEADER_LEN + frame.len();
        if self.ring_space() < need {
            self.rx_dropped += 1;
            self.irq_if_unmasked(ctx, isr::RER);
            return;
        }
        // Compose header + frame and DMA it into the ring (wrapping).
        let mut pkt = Vec::with_capacity(need);
        pkt.extend_from_slice(&1u16.to_le_bytes()); // status: OK
        pkt.extend_from_slice(&(frame.len() as u16).to_le_bytes());
        pkt.extend_from_slice(frame);
        let base = u64::from(self.rbstart);
        let mut off = self.cbr as usize;
        let mut ok = true;
        for chunk in pkt.chunks(RX_RING_LEN - off % RX_RING_LEN) {
            if ctx
                .dma_write(base + (off % RX_RING_LEN) as u64, chunk)
                .is_err()
            {
                ok = false;
                break;
            }
            off += chunk.len();
        }
        if ok {
            self.cbr = (off % RX_RING_LEN) as u32;
            self.rx_ok += 1;
            self.irq_if_unmasked(ctx, isr::ROK);
        } else {
            // Driver dead: its IOMMU window is gone; frame lost.
            self.rx_dropped += 1;
        }
    }

    fn hard_reset(&mut self) {
        self.wedged = false;
        self.soft_reset();
        self.ready = false; // still needs a driver-issued software reset
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}
