//! Virtual time for the discrete-event simulation.
//!
//! All timing in the simulated operating system — device transfer rates,
//! heartbeat periods, TCP retransmission timeouts, policy-script backoff
//! delays — is expressed in [`SimTime`] / [`SimDuration`]. The engine never
//! consults the host clock, which makes every run bit-for-bit reproducible.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant on the simulation's virtual clock, in microseconds since boot.
///
/// Microsecond resolution is sufficient: the fastest event the paper's
/// system cares about is a kernel IPC round-trip (a few microseconds on
/// 2007-era hardware, see §4 of the paper on I/O MMU overhead).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The boot instant of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs an instant `micros` microseconds after boot.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Microseconds since boot.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since boot, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Time elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Constructs a duration of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Constructs a duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Constructs a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Constructs a duration from fractional seconds, rounding to the
    /// nearest microsecond. Negative inputs clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 {
            SimDuration(0)
        } else {
            SimDuration((secs * 1_000_000.0).round() as u64)
        }
    }

    /// Length in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Length in fractional seconds (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// `true` if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Duration needed to transfer `bytes` at `bytes_per_sec`.
    ///
    /// Used by device models (disk platter rate, Ethernet wire rate).
    /// Rounds up so transfers never complete instantaneously.
    pub fn for_transfer(bytes: u64, bytes_per_sec: u64) -> Self {
        assert!(bytes_per_sec > 0, "transfer rate must be positive");
        let micros = (bytes as u128 * 1_000_000u128).div_ceil(bytes_per_sec as u128);
        SimDuration(micros as u64)
    }

    /// Saturating multiplication by an integer factor (used for binary
    /// exponential backoff in policy scripts).
    pub fn saturating_mul(self, factor: u64) -> Self {
        SimDuration(self.0.saturating_mul(factor))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        self.saturating_mul(rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T+{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}us", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1_000.0)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_micros(1_500_000);
        let d = SimDuration::from_millis(500);
        assert_eq!((t + d).as_micros(), 2_000_000);
        assert_eq!((t + d) - t, d);
        assert_eq!(t.as_secs_f64(), 1.5);
    }

    #[test]
    fn since_saturates() {
        let early = SimTime::from_micros(10);
        let late = SimTime::from_micros(50);
        assert_eq!(early.since(late), SimDuration::ZERO);
        assert_eq!(late.since(early).as_micros(), 40);
    }

    #[test]
    fn transfer_duration_matches_rate() {
        // 1 MiB at 1 MiB/s takes exactly one second.
        let d = SimDuration::for_transfer(1 << 20, 1 << 20);
        assert_eq!(d, SimDuration::from_secs(1));
        // Rounds up: one byte at a huge rate still takes a microsecond.
        let tiny = SimDuration::for_transfer(1, u64::MAX / 2);
        assert!(tiny.as_micros() >= 1);
    }

    #[test]
    #[should_panic(expected = "transfer rate must be positive")]
    fn transfer_at_zero_rate_panics() {
        let _ = SimDuration::for_transfer(1, 0);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(3);
        assert_eq!(d * 4, SimDuration::from_millis(12));
        assert_eq!(d / 3, SimDuration::from_millis(1));
        assert_eq!(
            SimDuration::from_secs(1)
                .saturating_mul(u64::MAX)
                .as_micros(),
            u64::MAX
        );
    }

    #[test]
    fn from_secs_f64_clamps_and_rounds() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(0.0000015).as_micros(), 2);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
        assert_eq!(
            format!("{}", SimTime::from_micros(1_000_000)),
            "T+1.000000s"
        );
    }
}
